//! The multipath-QUIC testbed: one connection over `simnet` paths, driven
//! by a transport-agnostic [`TransportApp`].
//!
//! Structure mirrors the MPTCP testbed (`mptcp::Testbed`) deliberately:
//! data rides each path's shaped `fwd` link, requests and ACKs the unshaped
//! `rev` link, per-packet payloads wait in per-link [`DeliveryQueue`]s with
//! one coalesced wakeup per link direction in the heap, and scenario
//! controls chain-schedule. What differs is the transport: *one* connection
//! multiplexes every request as its own stream, the receiver reorders
//! per-stream (no cross-stream head-of-line blocking), and every ACK is
//! immediate per packet (QUIC-style, no delayed-ACK timer).
//!
//! Both testbeds accept the same application trait
//! ([`mptcp::TransportApp`]) and record into the same
//! [`mptcp::Recorder`], so workloads and figure tooling run unchanged on
//! either transport. Stream ids double as request ids: the testbed opens
//! receiver and sender stream state from the request metadata, keeping the
//! wire format down to `(stream, chunk, pn)` triples.

use ecf_core::SchedulerKind;
use mptcp::{segs_for_bytes, Recorder, RecorderConfig, ReqId, TransportApi, TransportApp};
use scenario::{Action, ControlEvent, Scenario};
use simnet::{
    DeliveryQueue, Engine, EventQueue, Model, Path, PathConfig, RunOutcome, Time, Verdict,
};
use tcp_model::{wire_size, MSS};
use telemetry::{Counter, EventKind, LinkDir, TelemetryHandle};

use crate::connection::{QuicConfig, QuicConn, QuicTx};
use crate::receiver::{DeliveredChunk, QuicReceiver};

/// Wire size of a stream-open request (HTTP/3 GET equivalent).
const REQUEST_WIRE_BYTES: u32 = 300;
/// Wire size of a pure ACK packet.
const ACK_WIRE_BYTES: u32 = 72;

/// Events of the quic testbed model (slim: these ride the engine heap).
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// Kick the application's `on_start` at t=0.
    AppStart,
    /// The head of `paths[path]`'s forward (data) delivery queue arrives.
    FwdDeliver {
        /// Path index.
        path: u32,
    },
    /// The head of `paths[path]`'s reverse (ACK/request) queue arrives.
    RevDeliver {
        /// Path index.
        path: u32,
    },
    /// A path's lazy probe-timeout timer fires.
    Pto {
        /// Path index.
        path: u32,
    },
    /// An application timer fires.
    AppTimer {
        /// Opaque token the application chose.
        token: u64,
    },
    /// A scenario control event fires (index into the compiled table).
    Control {
        /// Index into `QuicWorld::controls`.
        idx: u32,
    },
}

/// A packet parked in a per-link [`DeliveryQueue`].
#[derive(Debug, Clone, Copy)]
enum LinkPayload {
    /// One stream chunk headed for the client.
    Data { stream: u32, chunk: u64, pn: u64 },
    /// A per-packet ACK headed back to the server.
    Ack { pn: u64, rwnd_free: u64 },
    /// A stream-open request headed for the server.
    Request { req: ReqId, chunks: u64 },
}

/// Full testbed specification.
pub struct QuicTestbedConfig {
    /// The physical paths.
    pub paths: Vec<PathConfig>,
    /// Which scheduler places packets.
    pub scheduler: SchedulerKind,
    /// A custom scheduler instance overriding `scheduler`.
    pub custom_scheduler: Option<Box<dyn ecf_core::Scheduler + Send>>,
    /// Connection parameters.
    pub conn: QuicConfig,
    /// Seed for link jitter/loss.
    pub seed: u64,
    /// Explicit per-path RNG seeds overriding the [`simnet::path_seed`]
    /// derivation from `seed` (same contract as the MPTCP testbed).
    pub path_seeds: Option<Vec<u64>>,
    /// What to record.
    pub recorder: RecorderConfig,
    /// Network dynamics for the run.
    pub scenario: Scenario,
    /// Telemetry sink shared by every component.
    pub telemetry: TelemetryHandle,
}

impl QuicTestbedConfig {
    /// A two-path (WiFi + LTE) testbed, the common case.
    pub fn wifi_lte(wifi_mbps: f64, lte_mbps: f64, scheduler: SchedulerKind, seed: u64) -> Self {
        QuicTestbedConfig {
            paths: vec![PathConfig::wifi(wifi_mbps), PathConfig::lte(lte_mbps)],
            scheduler,
            custom_scheduler: None,
            conn: QuicConfig::default(),
            seed,
            path_seeds: None,
            recorder: RecorderConfig::default(),
            scenario: Scenario::default(),
            telemetry: TelemetryHandle::off(),
        }
    }
}

/// Mutable simulation state (everything except the application).
pub struct QuicWorld {
    /// Live paths, indexed as in the config.
    pub paths: Vec<Path>,
    /// The sender (server) side of the one connection.
    pub sender: QuicConn,
    /// The receiver (client) side.
    pub receiver: QuicReceiver,
    /// Collected measurements. One "connection" with a subflow per path,
    /// so per-path arrival stats land like per-subflow stats do on MPTCP.
    pub recorder: Recorder,
    path_up: Vec<bool>,
    fwd_inflight: Vec<DeliveryQueue<LinkPayload>>,
    rev_inflight: Vec<DeliveryQueue<LinkPayload>>,
    controls: Vec<ControlEvent>,
    plan_buf: Vec<QuicTx>,
    delivered_buf: Vec<DeliveredChunk>,
    completed_buf: Vec<ReqId>,
    tel: TelemetryHandle,
}

/// The application's handle into the running world.
pub struct QuicApi<'a> {
    /// Current simulation time.
    pub now: Time,
    world: &'a mut QuicWorld,
    queue: &'a mut EventQueue<Event>,
}

impl TransportApi for QuicApi<'_> {
    /// Open a new stream requesting `bytes` of response payload. The
    /// `conn` argument is ignored: a QUIC client multiplexes everything
    /// onto the one connection, which is exactly the point of comparison
    /// with N-connection MPTCP workloads.
    fn request(&mut self, _conn: usize, bytes: u64) -> ReqId {
        self.world.issue_request(self.now, bytes, self.queue)
    }

    fn set_timer(&mut self, at: Time, token: u64) {
        self.queue.schedule(at, Event::AppTimer { token });
    }
}

impl QuicApi<'_> {
    /// Read-only world access (recorder, receiver state...).
    pub fn world(&self) -> &QuicWorld {
        self.world
    }
}

impl QuicWorld {
    fn build(cfg: &mut QuicTestbedConfig) -> Self {
        if let Some(seeds) = &cfg.path_seeds {
            assert_eq!(seeds.len(), cfg.paths.len(), "one seed per path");
        }
        let paths: Vec<Path> = cfg
            .paths
            .iter()
            .enumerate()
            .map(|(i, pc)| {
                let seed = match &cfg.path_seeds {
                    Some(seeds) => seeds[i],
                    None => simnet::path_seed(cfg.seed, i),
                };
                let mut p = Path::new(pc, seed);
                p.attach_telemetry(&cfg.telemetry, i as u16);
                p
            })
            .collect();
        let handshake_rtts: Vec<std::time::Duration> =
            cfg.paths.iter().map(PathConfig::base_rtt).collect();
        let scheduler: Box<dyn ecf_core::Scheduler> = match cfg.custom_scheduler.take() {
            Some(custom) => custom,
            None => cfg.scheduler.build(),
        };
        let mut sender = QuicConn::new(cfg.conn, scheduler, &handshake_rtts);
        sender.set_telemetry(cfg.telemetry.clone(), 0);
        let n_paths = paths.len();
        QuicWorld {
            paths,
            sender,
            receiver: QuicReceiver::new(cfg.conn.rwnd_chunks),
            recorder: Recorder::new(cfg.recorder, &[n_paths]),
            path_up: vec![true; n_paths],
            fwd_inflight: (0..n_paths).map(|_| DeliveryQueue::with_capacity(512)).collect(),
            rev_inflight: (0..n_paths).map(|_| DeliveryQueue::with_capacity(512)).collect(),
            controls: cfg.scenario.compile(),
            plan_buf: Vec::with_capacity(64),
            delivered_buf: Vec::with_capacity(64),
            completed_buf: Vec::with_capacity(8),
            tel: cfg.telemetry.clone(),
        }
    }

    fn park_fwd(
        &mut self,
        arrival: Time,
        path: usize,
        payload: LinkPayload,
        q: &mut EventQueue<Event>,
    ) {
        let seq = q.reserve_seq();
        if let Some((at, s)) = self.fwd_inflight[path].push(arrival, seq, payload) {
            q.schedule_reserved(at, s, Event::FwdDeliver { path: path as u32 });
        }
    }

    fn park_rev(
        &mut self,
        arrival: Time,
        path: usize,
        payload: LinkPayload,
        q: &mut EventQueue<Event>,
    ) {
        let seq = q.reserve_seq();
        if let Some((at, s)) = self.rev_inflight[path].push(arrival, seq, payload) {
            q.schedule_reserved(at, s, Event::RevDeliver { path: path as u32 });
        }
    }

    /// True when every opened stream is fully delivered and acked.
    pub fn all_drained(&self) -> bool {
        self.sender.all_acked()
    }

    fn issue_request(&mut self, now: Time, bytes: u64, q: &mut EventQueue<Event>) -> ReqId {
        let chunks = segs_for_bytes(bytes);
        let n_paths = self.paths.len();
        let req = self.recorder.new_request(0, bytes, chunks, now, n_paths);
        // The client computed the stream id; open receive state eagerly so
        // reassembly bounds are known before the first chunk lands.
        self.receiver.open_stream(req as u32, chunks);
        // Stream-opens ride path 0 if up, else any live path.
        let path = if self.path_up[0] {
            0
        } else {
            match (0..n_paths).find(|&p| self.path_up[p]) {
                Some(p) => p,
                // Total blackout: the request is lost.
                None => return req,
            }
        };
        let arrival = match self.paths[path].rev.enqueue(now, REQUEST_WIRE_BYTES) {
            Verdict::Deliver { arrival } => arrival,
            // The reverse link is engineered lossless, but stay robust.
            _ => now + self.paths[path].rev.prop_delay(),
        };
        self.park_rev(arrival, path, LinkPayload::Request { req, chunks }, q);
        req
    }

    fn arm_pto(&mut self, path: usize, q: &mut EventQueue<Event>) {
        let p = &mut self.sender.paths[path];
        if !p.rto_scheduled && p.rto_deadline != Time::MAX {
            p.rto_scheduled = true;
            q.schedule(p.rto_deadline, Event::Pto { path: path as u32 });
        }
    }

    /// Run a send opportunity and put the resulting packets on the wire.
    fn pump_send(&mut self, now: Time, q: &mut EventQueue<Event>) {
        // Cross-layer sample, same contract as the MPTCP testbed:
        // `queued_bytes` expires the queue first, a mutation the next
        // enqueue would perform anyway, so sampling is digest-neutral.
        for i in 0..self.paths.len() {
            let qb = if self.path_up[i] { self.paths[i].fwd.queued_bytes(now) } else { 0 };
            self.sender.paths[i].link_queue_bytes = qb;
        }
        let mut plan = std::mem::take(&mut self.plan_buf);
        plan.clear();
        self.sender.try_send_into(now, &mut plan);
        if !plan.is_empty() {
            for t in &plan {
                // A down path swallows everything; recovery runs through
                // the PTO and pn-gap detection like any tail loss.
                if self.path_up[t.path] {
                    if let Verdict::Deliver { arrival } =
                        self.paths[t.path].fwd.enqueue(now, wire_size(MSS))
                    {
                        let payload =
                            LinkPayload::Data { stream: t.stream, chunk: t.chunk, pn: t.pn };
                        self.park_fwd(arrival, t.path, payload, q);
                    }
                }
            }
            self.tel.add(Counter::SegsSent, plan.len() as u64);
        }
        self.plan_buf = plan;
        for path in 0..self.paths.len() {
            self.arm_pto(path, q);
        }
    }

    fn on_request(&mut self, now: Time, req: ReqId, chunks: u64, q: &mut EventQueue<Event>) {
        self.recorder.requests[req as usize].server_arrival = Some(now);
        self.sender.open_stream(req as u32, chunks);
        self.pump_send(now, q);
    }

    /// Handle a data arrival. Completed requests are pushed onto
    /// `completed_buf` (cleared here); the dispatcher notifies the app.
    fn on_data(
        &mut self,
        now: Time,
        path: usize,
        stream: u32,
        chunk: u64,
        pn: u64,
        q: &mut EventQueue<Event>,
    ) {
        self.completed_buf.clear();
        let req = ReqId::from(stream);
        self.recorder.note_arrival(req, path, now);

        let mut delivered = std::mem::take(&mut self.delivered_buf);
        delivered.clear();
        self.receiver.on_chunk(now, stream, chunk, &mut delivered);
        for d in &delivered {
            self.recorder.note_ooo(0, d.ooo_delay);
        }
        self.delivered_buf = delivered;

        if self.receiver.stream_complete(stream)
            && self.recorder.requests[req as usize].completed.is_none()
        {
            self.recorder.requests[req as usize].completed = Some(now);
            self.completed_buf.push(req);
        }

        // QUIC-style immediate per-packet ACK, back on the same path.
        if self.path_up[path] {
            if let Verdict::Deliver { arrival } = self.paths[path].rev.enqueue(now, ACK_WIRE_BYTES)
            {
                let payload = LinkPayload::Ack { pn, rwnd_free: self.receiver.rwnd_free() };
                self.park_rev(arrival, path, payload, q);
            }
        }
    }

    fn on_ack(&mut self, now: Time, path: usize, pn: u64, rwnd_free: u64, q: &mut EventQueue<Event>) {
        let out = self.sender.on_ack(now, path, pn, rwnd_free);
        if out.fast_retx {
            self.tel.emit(now.as_nanos(), EventKind::FastRetx { conn: 0, path: path as u16 });
            self.tel.incr(Counter::FastRetx);
        }
        self.pump_send(now, q);
    }

    fn on_pto_fire(&mut self, now: Time, path: usize, q: &mut EventQueue<Event>) {
        self.sender.paths[path].rto_scheduled = false;
        let deadline = self.sender.paths[path].rto_deadline;
        if deadline == Time::MAX {
            return; // nothing inflight anymore
        }
        if now < deadline {
            // The deadline moved (acks arrived); re-arm lazily.
            self.arm_pto(path, q);
            return;
        }
        if self.sender.on_pto(path) {
            self.tel.emit(now.as_nanos(), EventKind::Rto { conn: 0, path: path as u16 });
            self.tel.incr(Counter::Rtos);
        }
        self.pump_send(now, q);
    }

    /// Apply a compiled scenario event (same semantics as on MPTCP).
    fn apply_control(&mut self, now: Time, ev: ControlEvent, q: &mut EventQueue<Event>) {
        match ev.action {
            Action::RateBps(bps) => {
                self.paths[ev.path].fwd.set_rate_bps(bps);
                self.tel.emit(
                    now.as_nanos(),
                    EventKind::RateChange {
                        path: ev.path as u16,
                        dir: LinkDir::Forward,
                        rate_bps: bps,
                    },
                );
                self.tel.incr(Counter::RateChanges);
            }
            Action::OneWayDelay(d) => {
                self.paths[ev.path].fwd.set_prop_delay(d);
                self.paths[ev.path].rev.set_prop_delay(d);
            }
            Action::PathUp(up) => self.on_path_state(now, ev.path, up, q),
            Action::Loss(model) => self.paths[ev.path].fwd.set_loss_model(model),
        }
    }

    fn on_path_state(&mut self, now: Time, path: usize, up: bool, q: &mut EventQueue<Event>) {
        self.path_up[path] = up;
        if up {
            self.sender.on_path_up(path);
            self.tel
                .emit(now.as_nanos(), EventKind::SubflowUp { conn: 0, path: path as u16 });
        } else {
            self.sender.on_path_down(path);
            self.tel
                .emit(now.as_nanos(), EventKind::SubflowDown { conn: 0, path: path as u16 });
        }
        self.tel.incr(Counter::SubflowTransitions);
        // Requeued chunks (down) or fresh capacity (up) may unblock sends.
        self.pump_send(now, q);
    }
}

/// The complete model: world + application.
pub struct QuicSim<A: TransportApp> {
    /// Simulation state.
    pub world: QuicWorld,
    /// The workload driver.
    pub app: A,
}

impl<A: TransportApp> QuicSim<A> {
    fn dispatch(&mut self, now: Time, path: usize, payload: LinkPayload, q: &mut EventQueue<Event>) {
        match payload {
            LinkPayload::Data { stream, chunk, pn } => {
                self.world.on_data(now, path, stream, chunk, pn, q);
                if !self.world.completed_buf.is_empty() {
                    let completed = std::mem::take(&mut self.world.completed_buf);
                    for &req in &completed {
                        let mut api = QuicApi { now, world: &mut self.world, queue: q };
                        self.app.on_response_complete(now, 0, req, &mut api);
                    }
                    self.world.completed_buf = completed;
                }
            }
            LinkPayload::Ack { pn, rwnd_free } => {
                self.world.on_ack(now, path, pn, rwnd_free, q);
            }
            LinkPayload::Request { req, chunks } => {
                self.world.on_request(now, req, chunks, q);
            }
        }
    }
}

impl<A: TransportApp> Model for QuicSim<A> {
    type Event = Event;

    fn handle(&mut self, now: Time, ev: Event, q: &mut EventQueue<Event>) {
        match ev {
            Event::AppStart => {
                let mut api = QuicApi { now, world: &mut self.world, queue: q };
                self.app.on_start(now, &mut api);
            }
            Event::AppTimer { token } => {
                let mut api = QuicApi { now, world: &mut self.world, queue: q };
                self.app.on_timer(now, token, &mut api);
            }
            Event::FwdDeliver { path } => {
                let p = path as usize;
                if let Some((payload, mut next)) = self.world.fwd_inflight[p].pop() {
                    self.dispatch(now, p, payload, q);
                    // Batched drain, same contract as the mptcp sim: claim
                    // each parked head only when nothing else pending (nor
                    // the run deadline) orders before it.
                    while let Some((at, s)) = next {
                        if !q.claim_dispatch(at, s) {
                            q.schedule_reserved(at, s, Event::FwdDeliver { path });
                            break;
                        }
                        let (payload, n) = self.world.fwd_inflight[p]
                            .pop()
                            .expect("claimed delivery vanished");
                        self.dispatch(at, p, payload, q);
                        next = n;
                    }
                }
            }
            Event::RevDeliver { path } => {
                let p = path as usize;
                if let Some((payload, mut next)) = self.world.rev_inflight[p].pop() {
                    self.dispatch(now, p, payload, q);
                    while let Some((at, s)) = next {
                        if !q.claim_dispatch(at, s) {
                            q.schedule_reserved(at, s, Event::RevDeliver { path });
                            break;
                        }
                        let (payload, n) = self.world.rev_inflight[p]
                            .pop()
                            .expect("claimed delivery vanished");
                        self.dispatch(at, p, payload, q);
                        next = n;
                    }
                }
            }
            Event::Pto { path } => {
                self.world.on_pto_fire(now, path as usize, q);
            }
            Event::Control { idx } => {
                let ev = self.world.controls[idx as usize];
                self.world.apply_control(now, ev, q);
                // Chain-schedule the successor (controls are time-sorted).
                let next = idx as usize + 1;
                if let Some(n) = self.world.controls.get(next) {
                    q.schedule(n.at, Event::Control { idx: next as u32 });
                }
            }
        }
    }
}

/// A ready-to-run quic testbed: engine + model.
pub struct QuicTestbed<A: TransportApp> {
    /// `None` only after [`QuicTestbed::into_queue`].
    engine: Option<Engine<QuicSim<A>>>,
}

impl<A: TransportApp> QuicTestbed<A> {
    /// Build the world from `cfg`, install `app`, and schedule the start
    /// event plus the compiled scenario's first control event.
    pub fn new(cfg: QuicTestbedConfig, app: A) -> Self {
        QuicTestbed::new_with_queue(cfg, app, EventQueue::new())
    }

    /// Like [`QuicTestbed::new`], but recycling an event queue recovered
    /// via [`QuicTestbed::into_queue`] (keeps its slab across runs).
    pub fn new_with_queue(mut cfg: QuicTestbedConfig, app: A, queue: EventQueue<Event>) -> Self {
        let world = QuicWorld::build(&mut cfg);
        let first_control = world.controls.first().map(|e| e.at);
        let mut engine = Engine::with_queue(QuicSim { world, app }, queue);
        engine.queue_mut().schedule(Time::ZERO, Event::AppStart);
        if let Some(at) = first_control {
            engine.queue_mut().schedule(at, Event::Control { idx: 0 });
        }
        QuicTestbed { engine: Some(engine) }
    }

    fn eng(&self) -> &Engine<QuicSim<A>> {
        self.engine.as_ref().expect("testbed engine taken")
    }

    /// Run until `deadline` (or the event queue drains).
    pub fn run_until(&mut self, deadline: Time) -> RunOutcome {
        self.engine.as_mut().expect("testbed engine taken").run_until(deadline)
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.eng().now()
    }

    /// Events processed so far (diagnostic).
    pub fn events_processed(&self) -> u64 {
        self.eng().processed()
    }

    /// The world (measurements, sender, receiver, paths).
    pub fn world(&self) -> &QuicWorld {
        &self.eng().model.world
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.eng().model.app
    }

    /// Tear down, recovering the event queue for a later
    /// [`QuicTestbed::new_with_queue`].
    pub fn into_queue(mut self) -> EventQueue<Event> {
        let engine = self.engine.take().expect("testbed engine taken");
        flush_queue_stats(&engine);
        engine.into_queue()
    }
}

/// Flush event-queue diagnostics to telemetry at teardown, exactly like
/// the MPTCP testbed does.
fn flush_queue_stats<A: TransportApp>(engine: &Engine<QuicSim<A>>) {
    let tel = &engine.model.world.tel;
    if !tel.is_enabled() {
        return;
    }
    let q = engine.queue();
    tel.add(Counter::QueueCascades, q.cascaded_total());
    tel.add(Counter::QueuePeakDepth, q.peak_len() as u64);
    tel.add(Counter::FfJumps, q.ff_jumps());
    tel.add(Counter::FfSkippedNs, q.ff_skipped_ns());
    tel.add(Counter::BatchDeliveries, q.batch_deliveries());
    tel.set_max(Counter::BatchMaxLen, q.batch_max_len());
}

impl<A: TransportApp> Drop for QuicTestbed<A> {
    fn drop(&mut self) {
        if let Some(engine) = &self.engine {
            flush_queue_stats(engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Download `sizes` as one stream each, all opened at t=0.
    struct Burst {
        sizes: Vec<u64>,
        done: usize,
        finished_at: Option<Time>,
    }

    impl Burst {
        fn new(sizes: Vec<u64>) -> Self {
            Burst { sizes, done: 0, finished_at: None }
        }
    }

    impl TransportApp for Burst {
        fn on_start(&mut self, _now: Time, api: &mut dyn TransportApi) {
            for &b in &self.sizes {
                api.request(0, b);
            }
        }
        fn on_response_complete(
            &mut self,
            now: Time,
            _conn: usize,
            _req: ReqId,
            _api: &mut dyn TransportApi,
        ) {
            self.done += 1;
            if self.done == self.sizes.len() {
                self.finished_at = Some(now);
            }
        }
    }

    #[test]
    fn one_request_completes_quickly() {
        let cfg = QuicTestbedConfig::wifi_lte(2.0, 8.0, SchedulerKind::Ecf, 1);
        let mut tb = QuicTestbed::new(cfg, Burst::new(vec![256 * 1024]));
        tb.run_until(Time::from_secs(30));
        assert_eq!(tb.app().done, 1);
        let req = &tb.world().recorder.requests[0];
        assert!(req.completion_time().unwrap().as_secs_f64() < 5.0);
        assert!(tb.world().all_drained());
    }

    #[test]
    fn many_streams_multiplex_on_one_connection() {
        let cfg = QuicTestbedConfig::wifi_lte(2.0, 8.0, SchedulerKind::Ecf, 7);
        let sizes: Vec<u64> = (0..40).map(|i| 8 * 1024 + 1024 * i).collect();
        let mut tb = QuicTestbed::new(cfg, Burst::new(sizes.clone()));
        tb.run_until(Time::from_secs(60));
        assert_eq!(tb.app().done, sizes.len());
        assert_eq!(tb.world().recorder.requests.len(), sizes.len());
        assert!(tb.world().all_drained());
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let run = || {
            let cfg = QuicTestbedConfig::wifi_lte(0.5, 6.0, SchedulerKind::Ecf, 42);
            let sizes: Vec<u64> = (0..20).map(|i| 4 * 1024 + 3000 * i).collect();
            let mut tb = QuicTestbed::new(cfg, Burst::new(sizes));
            tb.run_until(Time::from_secs(60));
            let times: Vec<Option<Time>> =
                tb.world().recorder.requests.iter().map(|r| r.completed).collect();
            (tb.events_processed(), times, tb.app().finished_at)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn survives_a_path_outage() {
        let mut cfg = QuicTestbedConfig::wifi_lte(1.0, 8.0, SchedulerKind::Ecf, 3);
        cfg.scenario =
            Scenario::new().outage(1, Time::from_secs(1), Time::from_secs(4));
        let sizes: Vec<u64> = vec![2_000_000, 2_000_000];
        let mut tb = QuicTestbed::new(cfg, Burst::new(sizes));
        tb.run_until(Time::from_secs(120));
        assert_eq!(tb.app().done, 2, "streams must finish despite the outage");
    }
}
