//! Receiver-side stream reassembly: per-stream in-order delivery with no
//! cross-stream head-of-line blocking.
//!
//! This is the structural difference to the MPTCP receiver
//! (`mptcp::Receiver`): there, a hole in the connection-level data sequence
//! stalls *every* response behind it; here each stream reorders
//! independently, so a lost chunk on stream 3 never delays stream 7. The
//! out-of-order delay recorded per chunk (time between a chunk's arrival
//! and the arrival of the packet that unblocked it) is therefore a
//! per-stream quantity, directly comparable to the MPTCP testbed's
//! connection-level OOO delays.

use std::collections::BTreeMap;
use std::time::Duration;

use simnet::Time;

/// One chunk released to the application, with its reordering delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredChunk {
    /// Stream the chunk belongs to.
    pub stream: u32,
    /// Chunk offset within the stream.
    pub chunk: u64,
    /// How long the chunk waited in the reorder buffer (zero when it
    /// arrived exactly in order).
    pub ooo_delay: Duration,
}

/// Reassembly state for one stream.
#[derive(Debug, Default)]
struct StreamRx {
    /// Total chunks the stream will carry; 0 until the stream is opened.
    total: u64,
    /// Next chunk offset the application expects.
    next: u64,
    /// Out-of-order chunks held for reassembly, keyed by offset, valued by
    /// first-arrival time (duplicates keep the original timestamp).
    held: BTreeMap<u64, Time>,
    /// Whether [`QuicReceiver::open_stream`] ran for this id.
    opened: bool,
}

/// The connection's receive side: per-stream reassembly plus the shared
/// flow-control budget advertised back to the sender.
///
/// Chunks are MSS-sized frames (the testbed's packetization unit); the
/// receive window is counted in chunks held out-of-order, mirroring how the
/// MPTCP model counts its window in segments.
#[derive(Debug)]
pub struct QuicReceiver {
    streams: Vec<StreamRx>,
    /// Total chunks across all streams currently held out of order.
    held_total: u64,
    /// Connection-level receive budget, in chunks.
    rwnd_chunks: u64,
}

impl QuicReceiver {
    /// A receiver advertising a `rwnd_chunks`-chunk connection window.
    pub fn new(rwnd_chunks: u64) -> Self {
        QuicReceiver { streams: Vec::new(), held_total: 0, rwnd_chunks }
    }

    /// Declare stream `stream` and its length. Must run before any of its
    /// chunks arrive; opening the same stream twice is a logic error.
    pub fn open_stream(&mut self, stream: u32, total_chunks: u64) {
        let i = stream as usize;
        if self.streams.len() <= i {
            self.streams.resize_with(i + 1, StreamRx::default);
        }
        let s = &mut self.streams[i];
        assert!(!s.opened, "stream {stream} opened twice");
        s.opened = true;
        s.total = total_chunks;
    }

    /// Process one arriving chunk. Chunks released to the application (the
    /// arrival itself when in order, plus any held chunks it unblocks) are
    /// appended to `out` in delivery order. Duplicates and out-of-range
    /// offsets are ignored.
    pub fn on_chunk(&mut self, now: Time, stream: u32, chunk: u64, out: &mut Vec<DeliveredChunk>) {
        let s = &mut self.streams[stream as usize];
        debug_assert!(s.opened, "chunk for unopened stream {stream}");
        if chunk < s.next || chunk >= s.total {
            return; // duplicate of delivered data, or junk past the end
        }
        if chunk == s.next {
            s.next += 1;
            out.push(DeliveredChunk { stream, chunk, ooo_delay: Duration::ZERO });
            // Drain the run of held chunks this arrival unblocked.
            while let Some(arrived) = s.held.remove(&s.next) {
                self.held_total -= 1;
                out.push(DeliveredChunk {
                    stream,
                    chunk: s.next,
                    ooo_delay: now.since(arrived),
                });
                s.next += 1;
            }
        } else if let std::collections::btree_map::Entry::Vacant(e) = s.held.entry(chunk) {
            e.insert(now);
            self.held_total += 1;
        }
    }

    /// Has `stream` delivered every chunk it was opened with?
    pub fn stream_complete(&self, stream: u32) -> bool {
        let s = &self.streams[stream as usize];
        s.opened && s.next == s.total
    }

    /// Free receive window, in chunks: the advertised budget minus
    /// everything parked in reorder buffers.
    pub fn rwnd_free(&self) -> u64 {
        self.rwnd_chunks.saturating_sub(self.held_total)
    }

    /// Chunks currently held out of order, across all streams.
    pub fn held_chunks(&self) -> u64 {
        self.held_total
    }

    /// Number of stream slots (opened or placeholder).
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn in_order_chunks_deliver_with_zero_delay() {
        let mut rx = QuicReceiver::new(64);
        rx.open_stream(0, 3);
        let mut out = Vec::new();
        for c in 0..3 {
            rx.on_chunk(t(c), 0, c, &mut out);
        }
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|d| d.ooo_delay == Duration::ZERO));
        assert!(rx.stream_complete(0));
        assert_eq!(rx.rwnd_free(), 64);
    }

    #[test]
    fn reordered_chunk_waits_and_reports_its_delay() {
        let mut rx = QuicReceiver::new(64);
        rx.open_stream(0, 3);
        let mut out = Vec::new();
        rx.on_chunk(t(0), 0, 0, &mut out);
        rx.on_chunk(t(10), 0, 2, &mut out); // held
        assert_eq!(out.len(), 1);
        assert_eq!(rx.held_chunks(), 1);
        assert_eq!(rx.rwnd_free(), 63);
        rx.on_chunk(t(25), 0, 1, &mut out); // unblocks chunk 2
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].ooo_delay, Duration::ZERO); // chunk 1 itself in order
        assert_eq!(out[2].chunk, 2);
        assert_eq!(out[2].ooo_delay, Duration::from_millis(15));
        assert!(rx.stream_complete(0));
    }

    #[test]
    fn no_cross_stream_head_of_line_blocking() {
        let mut rx = QuicReceiver::new(64);
        rx.open_stream(0, 2);
        rx.open_stream(1, 2);
        let mut out = Vec::new();
        rx.on_chunk(t(0), 0, 1, &mut out); // stream 0 blocked on chunk 0
        assert!(out.is_empty());
        rx.on_chunk(t(1), 1, 0, &mut out); // stream 1 flows regardless
        rx.on_chunk(t(2), 1, 1, &mut out);
        assert_eq!(out.len(), 2);
        assert!(rx.stream_complete(1));
        assert!(!rx.stream_complete(0));
    }

    #[test]
    fn duplicates_are_ignored_and_keep_first_arrival_time() {
        let mut rx = QuicReceiver::new(64);
        rx.open_stream(0, 2);
        let mut out = Vec::new();
        rx.on_chunk(t(5), 0, 1, &mut out); // held at t=5
        rx.on_chunk(t(9), 0, 1, &mut out); // duplicate, no second hold
        assert_eq!(rx.held_chunks(), 1);
        rx.on_chunk(t(20), 0, 0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].ooo_delay, Duration::from_millis(15)); // from t=5
        // Duplicate of delivered data: silently dropped.
        rx.on_chunk(t(30), 0, 0, &mut out);
        assert_eq!(out.len(), 2);
    }
}
