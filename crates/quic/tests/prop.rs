//! Property test: [`quic::QuicReceiver`] against a naive per-stream oracle
//! under arbitrary loss, reordering, and duplication.
//!
//! The oracle stores every stream as a plain `Vec<Option<Time>>` of
//! first-arrival times and rescans from the in-order frontier on each
//! arrival — obviously correct, O(n²), and structurally unlike the
//! receiver's BTreeMap reorder buffer, so a bug in either shows up as a
//! divergence. Inputs shrink through `testkit::prop` (a failure prints a
//! `TESTKIT_SEED=<n>` replay handle).

use std::time::Duration;

use quic::{DeliveredChunk, QuicReceiver};
use simnet::Time;
use testkit::prop::{check, vec_of, Gen};

/// Per-stream oracle: first-arrival times plus the delivery frontier.
struct OracleStream {
    total: u64,
    next: u64,
    arrived: Vec<Option<Time>>,
}

struct Oracle {
    streams: Vec<OracleStream>,
    rwnd_chunks: u64,
}

impl Oracle {
    fn new(totals: &[u64], rwnd_chunks: u64) -> Self {
        Oracle {
            streams: totals
                .iter()
                .map(|&t| OracleStream { total: t, next: 0, arrived: vec![None; t as usize] })
                .collect(),
            rwnd_chunks,
        }
    }

    fn on_chunk(&mut self, now: Time, stream: u32, chunk: u64, out: &mut Vec<DeliveredChunk>) {
        let s = &mut self.streams[stream as usize];
        if chunk >= s.total {
            return;
        }
        let slot = &mut s.arrived[chunk as usize];
        if slot.is_none() {
            *slot = Some(now);
        }
        // Deliver the longest contiguous run from the frontier. A chunk's
        // OOO delay is the gap between its own (first) arrival and the
        // arrival that unblocked it — zero for the unblocking chunk itself.
        while s.next < s.total {
            let Some(arrived) = s.arrived[s.next as usize] else { break };
            out.push(DeliveredChunk { stream, chunk: s.next, ooo_delay: now.since(arrived) });
            s.next += 1;
        }
    }

    /// Chunks arrived but undeliverable: held in the reorder buffer.
    fn held_total(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| {
                s.arrived[s.next as usize..]
                    .iter()
                    .filter(|a| a.is_some())
                    .count() as u64
            })
            .sum()
    }

    fn rwnd_free(&self) -> u64 {
        self.rwnd_chunks.saturating_sub(self.held_total())
    }

    fn stream_complete(&self, stream: u32) -> bool {
        let s = &self.streams[stream as usize];
        s.next == s.total
    }
}

/// A generated arrival: (stream index, chunk offset, time-delta ms).
/// Chunk offsets beyond a stream's length model duplicates/junk; repeated
/// (stream, chunk) pairs model duplicated packets.
type RawArrival = (usize, u64, u64);

fn arrivals() -> impl Gen<Value = Vec<RawArrival>> {
    vec_of((0usize..4, 0u64..24, 0u64..50), 0..160)
}

#[test]
fn receiver_matches_naive_oracle() {
    // Stream lengths are fixed per case shape; arrival schedules vary.
    let totals = [20u64, 1, 7, 13];
    check(400, arrivals(), |raw| {
        let mut rx = QuicReceiver::new(64);
        let mut oracle = Oracle::new(&totals, 64);
        for (i, &t) in totals.iter().enumerate() {
            rx.open_stream(i as u32, t);
        }
        let mut now_ms = 0u64;
        let mut got = Vec::new();
        let mut want = Vec::new();
        for &(stream, chunk, dt) in &raw {
            now_ms += dt;
            let now = Time::from_millis(now_ms);
            got.clear();
            want.clear();
            rx.on_chunk(now, stream as u32, chunk, &mut got);
            oracle.on_chunk(now, stream as u32, chunk, &mut want);
            assert_eq!(got, want, "delivery divergence at t={now_ms}ms");
            assert_eq!(rx.held_chunks(), oracle.held_total(), "held-chunk divergence");
            assert_eq!(rx.rwnd_free(), oracle.rwnd_free(), "rwnd divergence");
            for s in 0..totals.len() as u32 {
                assert_eq!(
                    rx.stream_complete(s),
                    oracle.stream_complete(s),
                    "completion divergence on stream {s}"
                );
            }
        }
    });
}

/// Feeding every chunk of every stream (in any generated order, with
/// duplicates) must complete all streams with no chunks left held.
#[test]
fn full_feed_always_completes() {
    let totals = [6u64, 3, 9];
    check(200, arrivals(), |raw| {
        let mut rx = QuicReceiver::new(64);
        for (i, &t) in totals.iter().enumerate() {
            rx.open_stream(i as u32, t);
        }
        let mut out = Vec::new();
        let mut now_ms = 0u64;
        // Generated (possibly partial) prefix...
        for &(stream, chunk, dt) in &raw {
            if stream >= totals.len() {
                continue;
            }
            now_ms += dt;
            rx.on_chunk(Time::from_millis(now_ms), stream as u32, chunk, &mut out);
        }
        // ...then a sweep of everything, in order.
        for (i, &t) in totals.iter().enumerate() {
            for c in 0..t {
                now_ms += 1;
                rx.on_chunk(Time::from_millis(now_ms), i as u32, c, &mut out);
            }
        }
        for s in 0..totals.len() as u32 {
            assert!(rx.stream_complete(s));
        }
        assert_eq!(rx.held_chunks(), 0);
        assert_eq!(rx.rwnd_free(), 64);
        let delivered: u64 = totals.iter().sum();
        assert_eq!(out.len() as u64, delivered, "each chunk delivered exactly once");
        assert!(out.iter().all(|d| d.ooo_delay >= Duration::ZERO));
    });
}
