#!/usr/bin/env bash
# Regenerate the committed BENCH.json baseline from a full (non-smoke) run
# of the tracked throughput bench.
#
# The baseline is the per-benchmark MEDIAN of three full runs — a typical
# observation, not a lucky one. The perf gate in scripts/verify.sh compares
# the BEST of three fresh runs against it with 10% slack; the asymmetry is
# deliberate: on a shared box interference only ever slows a run down, so a
# fresh best that still can't get within 10% of a committed median is a
# real regression, not scheduler noise. The output is
# canonicalized so regeneration is deterministic given the same
# measurements: results sorted by name, keys in a pinned order, one result
# per line — a diff of BENCH.json is always a diff of numbers, never of
# formatting. Run this on an otherwise-idle machine.
#
# Usage: scripts/bench_update.sh [--filter <regex>]
#
# With --filter, only benchmarks whose full name matches the pattern (the
# testkit regex_lite subset, exported as TESTKIT_BENCH_FILTER) are re-run,
# and their fresh medians are merged over the existing BENCH.json — results
# for unmatched names are kept verbatim. This makes a wheel-level change
# affordable to re-baseline without paying for the multi-minute
# browse_10k_mono monolith.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER=""
while [ $# -gt 0 ]; do
    case "$1" in
        --filter)
            [ $# -ge 2 ] || { echo "bench_update.sh: --filter needs a pattern" >&2; exit 1; }
            FILTER="$2"
            shift 2
            ;;
        *)
            echo "bench_update.sh: unknown argument '$1'" >&2
            echo "usage: scripts/bench_update.sh [--filter <regex>]" >&2
            exit 1
            ;;
    esac
done

if [ "${TESTKIT_BENCH_SMOKE:-0}" = "1" ]; then
    echo "bench_update.sh: refusing to run with TESTKIT_BENCH_SMOKE=1 —" \
        "a 1-iteration smoke run is not a baseline" >&2
    exit 1
fi

if [ -n "$FILTER" ] && [ ! -f BENCH.json ]; then
    echo "bench_update.sh: --filter needs an existing BENCH.json to merge into" >&2
    exit 1
fi

export TESTKIT_BENCH_FILTER="$FILTER"

run_a="$(mktemp /tmp/bench-update-a.XXXXXX.json)"
run_b="$(mktemp /tmp/bench-update-b.XXXXXX.json)"
run_c="$(mktemp /tmp/bench-update-c.XXXXXX.json)"
run_d="$(mktemp /tmp/bench-update-d.XXXXXX.json)"
trap 'rm -f "$run_a" "$run_b" "$run_c" "$run_d"' EXIT

echo "== three full sim_throughput runs (this takes a few minutes) =="
for run_json in "$run_a" "$run_b" "$run_c"; do
    TESTKIT_BENCH_JSON="$run_json" \
        cargo bench --offline -p ecf-bench --bench sim_throughput
done

# The sharded sweep bench is informational (not perf-gated) and its
# monolith baseline costs minutes per iteration, so one full run suffices.
# Its results carry a "workers" key recording what the rates were measured
# on — a sharded number is only comparable at the same worker count.
echo "== one full sharded sweep run (monolith baseline is slow) =="
TESTKIT_BENCH_JSON="$run_d" \
    cargo bench --offline -p ecf-bench --bench sharded

echo "== canonicalizing median-of-three into BENCH.json =="
python3 - BENCH.json "$FILTER" "$run_a" "$run_b" "$run_c" "$run_d" <<'PY'
import json, sys

dst, filt = sys.argv[1], sys.argv[2]
by_name = {}
for src in sys.argv[3:]:
    doc = json.load(open(src))
    if doc.get("schema") != 1:
        sys.exit(f"bench_update.sh: unexpected schema {doc.get('schema')!r}")
    if doc.get("smoke"):
        sys.exit("bench_update.sh: bench ran in smoke mode; baseline rejected")
    for r in doc["results"]:
        by_name.setdefault(r["name"], []).append(r)

if filt and not by_name:
    sys.exit(f"bench_update.sh: filter {filt!r} matched no benchmarks")

# Per benchmark, keep the run whose throughput is the median of the runs
# that measured it (three for sim_throughput, one for the sharded sweep).
median = {}
for name, runs in by_name.items():
    runs.sort(key=lambda r: r.get("elements_per_sec", 0))
    median[name] = runs[len(runs) // 2]

# Partial regeneration: carry over existing results the filter excluded
# from this run. Fresh measurements always win over carried-over ones.
carried = 0
if filt:
    old = json.load(open(dst))
    for r in old.get("results", []):
        if r["name"] not in median:
            median[r["name"]] = r
            carried += 1

KEYS = ("name", "median_ns", "p95_ns", "samples", "iters_per_sample",
        "elements_per_iter", "elements_per_sec")
OPTIONAL = ("workers",)

def canon(r):
    missing = [k for k in KEYS if k not in r]
    if missing:
        sys.exit(f"bench_update.sh: result {r.get('name')!r} lacks {missing}")
    keys = KEYS + tuple(k for k in OPTIONAL if k in r)
    return "    {" + ", ".join(f'"{k}": {json.dumps(r[k])}' for k in keys) + "}"

lines = [canon(median[name]) for name in sorted(median)]
body = '{\n  "schema": 1,\n  "smoke": false,\n  "results": [\n'
body += ",\n".join(lines) + "\n  ]\n}\n"
open(dst, "w").write(body)
fresh = len(lines) - carried
note = f", {carried} carried over" if carried else ""
print(f"bench_update.sh: wrote {dst} ({fresh} fresh results{note})")
PY

git --no-pager diff --stat BENCH.json || true
