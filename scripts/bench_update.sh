#!/usr/bin/env bash
# Regenerate the committed BENCH.json baseline from a full (non-smoke) run
# of the tracked throughput bench.
#
# The baseline is the per-benchmark MEDIAN of three full runs — a typical
# observation, not a lucky one. The perf gate in scripts/verify.sh compares
# the BEST of three fresh runs against it with 10% slack; the asymmetry is
# deliberate: on a shared box interference only ever slows a run down, so a
# fresh best that still can't get within 10% of a committed median is a
# real regression, not scheduler noise. The output is
# canonicalized so regeneration is deterministic given the same
# measurements: results sorted by name, keys in a pinned order, one result
# per line — a diff of BENCH.json is always a diff of numbers, never of
# formatting. Run this on an otherwise-idle machine.
#
# Usage: scripts/bench_update.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${TESTKIT_BENCH_SMOKE:-0}" = "1" ]; then
    echo "bench_update.sh: refusing to run with TESTKIT_BENCH_SMOKE=1 —" \
        "a 1-iteration smoke run is not a baseline" >&2
    exit 1
fi

run_a="$(mktemp /tmp/bench-update-a.XXXXXX.json)"
run_b="$(mktemp /tmp/bench-update-b.XXXXXX.json)"
run_c="$(mktemp /tmp/bench-update-c.XXXXXX.json)"
trap 'rm -f "$run_a" "$run_b" "$run_c"' EXIT

run_d="$(mktemp /tmp/bench-update-d.XXXXXX.json)"
trap 'rm -f "$run_a" "$run_b" "$run_c" "$run_d"' EXIT

echo "== three full sim_throughput runs (this takes a few minutes) =="
for run_json in "$run_a" "$run_b" "$run_c"; do
    TESTKIT_BENCH_JSON="$run_json" \
        cargo bench --offline -p ecf-bench --bench sim_throughput
done

# The sharded sweep bench is informational (not perf-gated) and its
# monolith baseline costs minutes per iteration, so one full run suffices.
# Its results carry a "workers" key recording what the rates were measured
# on — a sharded number is only comparable at the same worker count.
echo "== one full sharded sweep run (monolith baseline is slow) =="
TESTKIT_BENCH_JSON="$run_d" \
    cargo bench --offline -p ecf-bench --bench sharded

echo "== canonicalizing median-of-three into BENCH.json =="
python3 - BENCH.json "$run_a" "$run_b" "$run_c" "$run_d" <<'PY'
import json, sys

dst = sys.argv[1]
by_name = {}
for src in sys.argv[2:]:
    doc = json.load(open(src))
    if doc.get("schema") != 1:
        sys.exit(f"bench_update.sh: unexpected schema {doc.get('schema')!r}")
    if doc.get("smoke"):
        sys.exit("bench_update.sh: bench ran in smoke mode; baseline rejected")
    for r in doc["results"]:
        by_name.setdefault(r["name"], []).append(r)

# Per benchmark, keep the run whose throughput is the median of the runs
# that measured it (three for sim_throughput, one for the sharded sweep).
median = {}
for name, runs in by_name.items():
    runs.sort(key=lambda r: r.get("elements_per_sec", 0))
    median[name] = runs[len(runs) // 2]

KEYS = ("name", "median_ns", "p95_ns", "samples", "iters_per_sample",
        "elements_per_iter", "elements_per_sec")
OPTIONAL = ("workers",)

def canon(r):
    missing = [k for k in KEYS if k not in r]
    if missing:
        sys.exit(f"bench_update.sh: result {r.get('name')!r} lacks {missing}")
    keys = KEYS + tuple(k for k in OPTIONAL if k in r)
    return "    {" + ", ".join(f'"{k}": {json.dumps(r[k])}' for k in keys) + "}"

lines = [canon(median[name]) for name in sorted(median)]
body = '{\n  "schema": 1,\n  "smoke": false,\n  "results": [\n'
body += ",\n".join(lines) + "\n  ]\n}\n"
open(dst, "w").write(body)
print(f"bench_update.sh: wrote {dst} ({len(lines)} results, median of 3 runs)")
PY

git --no-pager diff --stat BENCH.json || true
