#!/usr/bin/env bash
# Standard pre-PR gate: the tier-1 verify plus a smoke run of every bench
# harness, all fully offline (the hermetic-build policy in DESIGN.md — no
# crates.io dependency anywhere, so --offline must always succeed).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== tier-1: workspace tests (offline) =="
cargo test -q --offline --workspace

echo "== bench harnesses in smoke mode (1 iteration each) =="
TESTKIT_BENCH_SMOKE=1 cargo bench --offline -p ecf-bench

echo "verify.sh: all green"
