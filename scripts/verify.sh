#!/usr/bin/env bash
# Standard pre-PR gate: the tier-1 verify plus lint, a smoke run of every
# bench harness, and a shape-check of the machine-readable bench output —
# all fully offline (the hermetic-build policy in DESIGN.md — no crates.io
# dependency anywhere, so --offline must always succeed).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== tier-1: workspace tests (offline) =="
cargo test -q --offline --workspace

echo "== lint: clippy, warnings are errors (offline) =="
cargo clippy --offline --workspace -- -D warnings

echo "== bench harnesses in smoke mode (1 iteration each) =="
TESTKIT_BENCH_SMOKE=1 cargo bench --offline -p ecf-bench

echo "== sim_throughput smoke + BENCH JSON shape check =="
tmp_json="$(mktemp /tmp/bench-smoke.XXXXXX.json)"
trap 'rm -f "$tmp_json"' EXIT
TESTKIT_BENCH_JSON="$tmp_json" TESTKIT_BENCH_SMOKE=1 \
    cargo bench --offline -p ecf-bench --bench sim_throughput

check_bench_json() {
    # $1: path; $2: label; $3...: extra required benchmark names beyond the
    # baselined set. Fails if missing, unparseable, or lacking the
    # sim_throughput results / required fields. New benchmarks are listed as
    # extras on the fresh-output check only until scripts/bench_update.sh
    # next regenerates BENCH.json (the perf gate iterates the names present
    # in the committed baseline, so an un-baselined bench is shape-checked
    # but not yet perf-gated).
    local path="$1" label="$2"
    shift 2
    if [ ! -s "$path" ]; then
        echo "verify.sh: $label missing or empty: $path" >&2
        return 1
    fi
    python3 - "$path" "$label" "$@" <<'PY'
import json, sys
path, label = sys.argv[1], sys.argv[2]
extra = tuple(sys.argv[3:])
try:
    doc = json.load(open(path))
except Exception as e:
    sys.exit(f"verify.sh: {label} is not valid JSON: {e}")
if doc.get("schema") != 1:
    sys.exit(f"verify.sh: {label}: unexpected schema {doc.get('schema')!r}")
results = doc.get("results")
if not isinstance(results, list) or not results:
    sys.exit(f"verify.sh: {label}: no results array")
names = {r.get("name") for r in results}
for want in (
    "sim_throughput/streaming_0.3_8.6",
    "sim_throughput/streaming_0.3_8.6_telemetry",
    "sim_throughput/streaming_0.3_8.6_scenario",
    "sim_throughput/browse_6conn",
    "sim_throughput/browse_24conn",
    "sim_throughput/browse_1k",
    "sim_throughput/streaming_onoff",
    "sim_throughput/quic_web_107stream",
) + extra:
    if want not in names:
        sys.exit(f"verify.sh: {label}: missing benchmark {want}")
for r in results:
    for field in ("name", "median_ns", "p95_ns", "samples", "iters_per_sample"):
        if field not in r:
            sys.exit(f"verify.sh: {label}: result {r.get('name')!r} lacks {field}")
    if r["name"].startswith("sim_throughput/") and "elements_per_sec" not in r:
        sys.exit(f"verify.sh: {label}: {r['name']} lacks elements_per_sec")
print(f"verify.sh: {label}: ok ({len(results)} results)")
PY
}

check_bench_json "$tmp_json" "smoke bench JSON"
check_bench_json "BENCH.json" "committed BENCH.json" \
    "sharded/browse_coupled" "sharded/browse_coupled_mono"

echo "== perf gate: sim_throughput vs committed BENCH.json =="
# A 1-iteration smoke run is not a measurement, so the gate only runs on a
# full bench pass. `TESTKIT_BENCH_SMOKE=1 scripts/verify.sh` keeps the whole
# gate cheap for quick pre-push loops; CI and pre-merge runs leave it unset.
if [ "${TESTKIT_BENCH_SMOKE:-0}" = "1" ]; then
    echo "verify.sh: TESTKIT_BENCH_SMOKE=1 — skipping perf gate" \
        "(smoke numbers are not comparable to the committed baseline)"
else
    # Interference on a shared box only ever slows a run down, so the best
    # of three fresh runs is the closest observable to the machine's true
    # speed; that is what gets compared. BENCH.json records MEDIAN-of-three
    # (scripts/bench_update.sh) — comparing a fresh best against a committed
    # typical with 10% slack means a failure is a real regression, not noise.
    gate_a="$(mktemp /tmp/bench-gate-a.XXXXXX.json)"
    gate_b="$(mktemp /tmp/bench-gate-b.XXXXXX.json)"
    gate_c="$(mktemp /tmp/bench-gate-c.XXXXXX.json)"
    trap 'rm -f "$tmp_json" "$gate_a" "$gate_b" "$gate_c"' EXIT
    for gate_json in "$gate_a" "$gate_b" "$gate_c"; do
        TESTKIT_BENCH_JSON="$gate_json" \
            cargo bench --offline -p ecf-bench --bench sim_throughput
    done
    python3 - BENCH.json "$gate_a" "$gate_b" "$gate_c" <<'PY'
import json, sys

base_doc = json.load(open(sys.argv[1]))
fresh = {}
for path in sys.argv[2:]:
    doc = json.load(open(path))
    if doc.get("smoke"):
        sys.exit("verify.sh: perf gate got a smoke run; cannot compare")
    for r in doc["results"]:
        if "elements_per_sec" in r:
            cur = fresh.get(r["name"], 0.0)
            fresh[r["name"]] = max(cur, r["elements_per_sec"])
failed = False
for base in base_doc["results"]:
    name = base["name"]
    if "elements_per_sec" not in base or name not in fresh:
        continue
    now, then = fresh[name], base["elements_per_sec"]
    ratio = now / then
    mark = "ok"
    if ratio < 0.9:
        mark, failed = "REGRESSION", True
    print(f"verify.sh: perf {name}: best {now:,.0f} el/s vs baseline "
          f"{then:,.0f} ({ratio:.2f}x) {mark}")
if failed:
    sys.exit("verify.sh: perf gate failed — a benchmark regressed >10% vs "
             "BENCH.json (rerun on an idle machine to rule out noise; "
             "regenerate the baseline with scripts/bench_update.sh only for "
             "an intended change)")
print("verify.sh: perf gate ok")
PY
fi

echo "== telemetry trace smoke (repro --trace, quick) =="
tmp_trace="$(mktemp /tmp/trace-smoke.XXXXXX.jsonl)"
trap 'rm -f "$tmp_json" "$tmp_trace"' EXIT
cargo run --offline --release -p experiments --bin repro -- \
    --trace "$tmp_trace" --quick > /dev/null
python3 - "$tmp_trace" <<'PY'
import json, sys
path = sys.argv[1]
lines = open(path).read().splitlines()
if not lines:
    sys.exit("verify.sh: trace file is empty")
decisions = 0
for i, line in enumerate(lines):
    try:
        ev = json.loads(line)
    except Exception as e:
        sys.exit(f"verify.sh: trace line {i + 1} is not valid JSON: {e}")
    if "t_us" not in ev or "ev" not in ev:
        sys.exit(f"verify.sh: trace line {i + 1} lacks t_us/ev: {line[:80]}")
    if ev["ev"] == "sched_decision":
        decisions += 1
        for field in ("sched", "decision", "why", "queued_pkts", "paths"):
            if field not in ev:
                sys.exit(f"verify.sh: sched_decision line {i + 1} lacks {field}")
        if not ev["paths"] or "srtt_us" not in ev["paths"][0]:
            sys.exit(f"verify.sh: sched_decision line {i + 1} lacks path inputs")
if decisions == 0:
    sys.exit("verify.sh: trace has no sched_decision events")
print(f"verify.sh: trace ok ({len(lines)} events, {decisions} decisions)")
PY

echo "== scenario dynamics smoke (dyn_handover, quick) =="
# --no-save: the committed results/dyn_handover.txt is the full-effort run.
dyn_out="$(cargo run --offline --release -p experiments --bin repro -- dyn_handover --quick --no-save)"
echo "$dyn_out" | grep -q "outage_s" \
    || { echo "verify.sh: dyn_handover output lacks the ladder header" >&2; exit 1; }
echo "$dyn_out" | grep -q "ladder means: default=" \
    || { echo "verify.sh: dyn_handover output lacks the summary line" >&2; exit 1; }
[ -s results/dyn_handover.txt ] \
    || { echo "verify.sh: results/dyn_handover.txt missing or empty" >&2; exit 1; }

echo "== quic transport smoke (quic_web, quick) =="
# --no-save: the committed results/quic_web.txt is the full-effort run.
# Exercises the second transport end to end: 107 streams on one MPQUIC
# connection through the same scheduler seam as MPTCP, both transports in
# one report.
quic_out="$(cargo run --offline --release -p experiments --bin repro -- quic_web --quick --no-save)"
echo "$quic_out" | grep -q "107-object page" \
    || { echo "verify.sh: quic_web output lacks the comparison header" >&2; exit 1; }
for col in "plt_s" "ooo_p99_s"; do
    echo "$quic_out" | grep -q "$col" \
        || { echo "verify.sh: quic_web output lacks the $col column" >&2; exit 1; }
done
for transport in "quic" "mptcp"; do
    echo "$quic_out" | grep -Eq "^ *$transport  " \
        || { echo "verify.sh: quic_web output lacks $transport rows" >&2; exit 1; }
done
[ -s results/quic_web.txt ] \
    || { echo "verify.sh: results/quic_web.txt missing or empty" >&2; exit 1; }

echo "== coupled co-sim smoke (repro sweep --coupled, quick) =="
# A shared-bottleneck population must actually span engine groups in
# lockstep (DESIGN.md §13): the run reports its lookahead window and
# sync-round/boundary-message telemetry, and every unit still finishes.
coupled_out="$(cargo run --offline --release -p experiments --bin repro -- \
    sweep --coupled --quick 2>/dev/null)"
for field in "window:" "sync rounds:" "boundary:" "digest:"; do
    echo "$coupled_out" | grep -q "$field" \
        || { echo "verify.sh: coupled sweep output lacks $field" >&2; exit 1; }
done
shards="$(echo "$coupled_out" | awk '/^shards:/ {print $2}')"
[ "${shards:-0}" -ge 2 ] \
    || { echo "verify.sh: coupled sweep ran on $shards engine group(s)," \
         "expected >= 2 (co-sim did not engage)" >&2; exit 1; }
rounds="$(echo "$coupled_out" | awk '/^sync rounds:/ {print $3}')"
[ "${rounds:-0}" -ge 1 ] \
    || { echo "verify.sh: coupled sweep reports no sync rounds" >&2; exit 1; }
echo "verify.sh: coupled co-sim smoke ok ($shards groups, $rounds rounds)"

echo "== experiment-matrix smoke (repro matrix, quick, twice) =="
# Cold run into a throwaway cache, then a warm re-run: the second pass must
# be 100% cache hits (0 executed) and byte-identical — the determinism +
# caching contract of crates/experiments/src/expmatrix.
matrix_cache="$(mktemp -d /tmp/matrix-smoke.XXXXXX)"
trap 'rm -f "$tmp_json" "$tmp_trace"; rm -rf "$matrix_cache"' EXIT
matrix_spec="crates/experiments/specs/smoke.json"
cold_out="$(mktemp /tmp/matrix-cold.XXXXXX.txt)"
warm_out="$(mktemp /tmp/matrix-warm.XXXXXX.txt)"
warm_err="$(mktemp /tmp/matrix-warm.XXXXXX.err)"
trap 'rm -f "$tmp_json" "$tmp_trace" "$cold_out" "$warm_out" "$warm_err"; rm -rf "$matrix_cache"' EXIT
cargo run --offline --release -p experiments --bin repro -- \
    matrix "$matrix_spec" --quick --no-save --cache-dir "$matrix_cache" \
    > "$cold_out"
cargo run --offline --release -p experiments --bin repro -- \
    matrix "$matrix_spec" --quick --no-save --cache-dir "$matrix_cache" \
    > "$warm_out" 2> "$warm_err"
grep -q "0 misses (0 invalid), executed 0" "$warm_err" \
    || { echo "verify.sh: warm matrix run was not 100% cache hits:" >&2; \
         cat "$warm_err" >&2; exit 1; }
cmp -s "$cold_out" "$warm_out" \
    || { echo "verify.sh: warm matrix output differs from cold run" >&2; exit 1; }
echo "verify.sh: matrix smoke ok (warm run: 100% hits, output unchanged)"

echo "verify.sh: all green"
