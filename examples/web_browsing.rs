//! Web browsing over MPTCP: load a CNN-like 107-object page over six
//! parallel persistent connections (the paper's §5.5 setup) and compare
//! object completion times and reordering per scheduler.
//!
//! ```text
//! cargo run --release --example web_browsing
//! ```

use metrics::Cdf;
use mptcp_ecf::prelude::*;

fn main() {
    let page = PageModel::cnn_like(2014);
    println!(
        "Loading a {}-object, {:.1} MB page over 1.0 Mbps WiFi + 10.0 Mbps LTE\n",
        page.object_sizes.len(),
        page.total_bytes() as f64 / 1e6
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "scheduler", "load_time", "mean_obj", "p99_obj", "mean_ooo_ms", "p99_ooo_ms"
    );

    for kind in SchedulerKind::paper_set() {
        let conns = (0..6).map(|_| ConnSpec::new(kind, vec![0, 1])).collect();
        let cfg = TestbedConfig {
            paths: vec![PathConfig::wifi(1.0), PathConfig::lte(10.0)],
            conns,
            seed: 7,
            path_seeds: None,
            recorder: RecorderConfig::default(),
            scenario: Scenario::default(),
            telemetry: TelemetryHandle::off(),
        };
        let mut tb = Testbed::new(cfg, BrowserApp::new(page.clone(), 6));
        tb.run_until(Time::from_secs(600));
        assert!(tb.app().done(), "page load did not finish");

        let completions = Cdf::from_samples(tb.app().completion_times_secs());
        let ooo = Cdf::from_samples(tb.world().recorder.ooo_delays_secs());
        println!(
            "{:>10} {:>8.2} s {:>8.3} s {:>8.3} s {:>12.1} {:>12.1}",
            kind.label(),
            tb.app().page_load_time.expect("done").as_secs_f64(),
            completions.mean(),
            completions.quantile(0.99),
            ooo.mean() * 1e3,
            ooo.quantile(0.99) * 1e3,
        );
    }

    println!(
        "\nThe paper's Fig 20/21 shape: ECF completes objects sooner and with\n\
         less reordering than the default scheduler once paths are heterogeneous."
    );
}
