//! Quickstart: one MPTCP connection over heterogeneous WiFi + LTE paths,
//! downloading a few objects under the ECF scheduler, with the headline
//! counters printed at the end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mptcp_ecf::prelude::*;

/// Download three objects back to back and remember when each finished.
struct Downloads {
    sizes: Vec<u64>,
    next: usize,
    finished: Vec<(u64, Time)>,
}

impl Application for Downloads {
    fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
        api.request(0, self.sizes[0]);
        self.next = 1;
    }

    fn on_response_complete(&mut self, now: Time, _conn: usize, _req: u64, api: &mut Api<'_>) {
        self.finished.push((self.sizes[self.next - 1], now));
        if self.next < self.sizes.len() {
            api.request(0, self.sizes[self.next]);
            self.next += 1;
        }
    }
}

fn main() {
    // 0.3 Mbps WiFi (the primary subflow) + 8.6 Mbps LTE — the paper's most
    // heterogeneous pair.
    let cfg = TestbedConfig::wifi_lte(0.3, 8.6, SchedulerKind::Ecf, 42);
    let app = Downloads {
        sizes: vec![256 * 1024, 1024 * 1024, 512 * 1024],
        next: 0,
        finished: Vec::new(),
    };
    let mut tb = Testbed::new(cfg, app);
    tb.run_until(Time::from_secs(120));

    println!("ECF over 0.3 Mbps WiFi + 8.6 Mbps LTE\n");
    let mut last = Time::ZERO;
    for &(bytes, at) in &tb.app().finished {
        let secs = at.since(last).as_secs_f64();
        println!(
            "  {:>8} KB in {secs:5.2} s  ({:.2} Mbit/s)",
            bytes / 1024,
            bytes as f64 * 8.0 / secs / 1e6
        );
        last = at;
    }

    let world = tb.world();
    for (i, name) in ["wifi", "lte"].iter().enumerate() {
        let sf = &world.sender(0).subflows[i];
        println!(
            "\n  {name}: {} segments sent, {} retransmits, srtt {:?}",
            sf.stats().segs_sent,
            sf.stats().retransmits,
            sf.cc.rtt.srtt()
        );
    }
    println!(
        "\n  out-of-order delays recorded: {} (max {:.0} ms)",
        world.recorder.ooo_delays_us.len(),
        world.recorder.ooo_delays_us.iter().max().copied().unwrap_or(0) as f64 / 1e3,
    );
}
