//! Mobility / handover: stream a video while the WiFi path dies mid-session
//! and comes back a while later — the walk-out-of-the-café scenario the
//! paper's introduction motivates MPTCP with.
//!
//! ```text
//! cargo run --release --example handover
//! ```

use mptcp_ecf::prelude::*;

fn main() {
    println!("DASH session over 4 Mbps WiFi + 4 Mbps LTE;");
    println!("WiFi dies at t=20 s and recovers at t=60 s\n");

    for kind in [SchedulerKind::Default, SchedulerKind::Ecf] {
        let mut cfg = TestbedConfig::wifi_lte(4.0, 4.0, kind, 11);
        cfg.scenario = Scenario::new().outage(0, Time::from_secs(20), Time::from_secs(60));
        let player = PlayerConfig { video_secs: 120.0, ..PlayerConfig::default() };
        let mut tb = Testbed::new(cfg, DashApp::new(player, 0));
        tb.run_until(Time::from_secs(600));

        let p = &tb.app().player;
        let world = tb.world();
        println!(
            "{:>8}: avg bitrate {:.2} Mbps, {} stalls ({:.1} s stalled), \
             reinjected {} segs, wifi/lte split {}/{}",
            kind.label(),
            p.avg_bitrate_mbps(),
            p.rebuffer_events,
            p.stalled_secs,
            world.sender(0).subflows[1].stats().reinjections,
            world.sender(0).subflows[0].stats().segs_sent,
            world.sender(0).subflows[1].stats().segs_sent,
        );
    }

    println!(
        "\nWhen a path dies its unacknowledged data is reinjected on the\n\
         survivor (as the Linux implementation does on subflow error), so\n\
         playback continues over LTE and re-aggregates after recovery."
    );
}
