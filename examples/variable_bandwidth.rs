//! Streaming through bandwidth churn: both interfaces change rate at random
//! exponentially-spaced instants (the paper's §5.3), and the schedulers race
//! the same scenario.
//!
//! ```text
//! cargo run --release --example variable_bandwidth [scenario_seed]
//! ```

use std::time::Duration;

use mptcp_ecf::prelude::*;

fn main() {
    let scenario: u64 =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(6);
    let rates = [0.3, 1.1, 1.7, 4.2, 8.6];
    let horizon = Time::from_secs(900);

    println!("Random-bandwidth scenario {scenario} (mean change interval 40 s)\n");

    for kind in [SchedulerKind::Default, SchedulerKind::Blest, SchedulerKind::Ecf] {
        let mut cfg = TestbedConfig::wifi_lte(1.7, 1.7, kind, scenario);
        // Both interfaces walk the §5.3 random-rate process, each under
        // its own seed, so every scheduler races the identical scenario.
        cfg.scenario = Scenario::new()
            .random_rates(0, scenario * 2, Duration::from_secs(40), &rates, horizon)
            .random_rates(1, scenario * 2 + 1, Duration::from_secs(40), &rates, horizon);

        let player = PlayerConfig { video_secs: 180.0, ..PlayerConfig::default() };
        let mut tb = Testbed::new(cfg, DashApp::new(player, 0));
        tb.run_until(horizon);

        let p = &tb.app().player;
        println!(
            "{:>8}: avg throughput {:5.2} Mbps, avg bitrate {:5.2} Mbps, {} chunks, {} stalls",
            kind.label(),
            p.avg_throughput_mbps(),
            p.avg_bitrate_mbps(),
            p.history.len(),
            p.rebuffer_events,
        );
    }

    println!(
        "\nThe paper's Fig 16 shape: ECF tops every scenario because it\n\
         re-exploits whichever path is currently fast without committing\n\
         chunk tails to the slow one."
    );
}
