//! Plugging a custom scheduler into the stack: the `Scheduler` trait is the
//! extension point — implement it, hand a boxed instance to `ConnSpec`, and
//! the whole testbed (TCP machinery, reordering, workloads, metrics) drives
//! it like the built-ins.
//!
//! The toy policy here is "sticky fastest": pin to the lowest-RTT path and
//! only spill when it has been full for `patience` consecutive decisions —
//! a naive cousin of ECF's completion-time reasoning.
//!
//! ```text
//! cargo run --release --example custom_scheduler
//! ```

use mptcp_ecf::prelude::*;

/// Prefer the fastest path; tolerate `patience` full-window polls before
/// spilling to the next-fastest.
struct StickyFastest {
    patience: u32,
    consecutive_full: u32,
}

impl Scheduler for StickyFastest {
    fn name(&self) -> &'static str {
        "sticky"
    }

    fn select(&mut self, input: &SchedInput<'_>) -> Decision {
        let Some(fastest) = input.fastest() else {
            return Decision::Blocked;
        };
        if fastest.has_space() {
            self.consecutive_full = 0;
            return Decision::Send(fastest.id);
        }
        self.consecutive_full += 1;
        if self.consecutive_full <= self.patience {
            return Decision::Wait;
        }
        match input.fastest_available() {
            Some(p) => Decision::Send(p.id),
            None => Decision::Blocked,
        }
    }

    fn reset(&mut self) {
        self.consecutive_full = 0;
    }
}

/// One 2 MB download, completion recorded.
struct OneShot(Option<Time>);
impl Application for OneShot {
    fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
        api.request(0, 2 * 1024 * 1024);
    }
    fn on_response_complete(&mut self, now: Time, _c: usize, _r: u64, _a: &mut Api<'_>) {
        self.0 = Some(now);
    }
}

fn run(spec: ConnSpec, label: &str) {
    // An enabled handle records every scheduler verdict with its inputs and
    // provenance; the default (off) handle would make all of this free.
    let tel = TelemetryHandle::with_capacity(1 << 16);
    let cfg = TestbedConfig {
        paths: vec![PathConfig::wifi(0.3), PathConfig::lte(8.6)],
        conns: vec![spec],
        seed: 5,
        path_seeds: None,
        recorder: RecorderConfig::default(),
        scenario: Scenario::default(),
        telemetry: tel.clone(),
    };
    let mut tb = Testbed::new(cfg, OneShot(None));
    tb.run_until(Time::from_secs(120));
    let t = tb.app().0.expect("download finishes").as_secs_f64();
    let split: Vec<u64> =
        (0..2).map(|s| tb.world().sender(0).subflows[s].stats().segs_sent).collect();
    // Decision counters are flushed when the connections are dropped, so
    // read them after the testbed is done.
    drop(tb);
    println!(
        "{label:>10}: {t:5.2} s   wifi/lte segments = {}/{}   decisions = {} ({} waits)",
        split[0],
        split[1],
        tel.counter(Counter::Decisions),
        tel.counter(Counter::WaitDecisions),
    );
    // A one-liner per decision, straight from the trace. Built-ins report
    // *why* (which rule fired); a custom scheduler that only implements
    // `select` shows up as "unspecified" until it overrides
    // `select_explained`.
    for ev in tel.events().iter().filter(|e| e.label() == "sched_decision").take(3) {
        if let EventKind::SchedDecision(d) = ev.kind {
            let verdict = match d.decision {
                Decision::Send(p) => format!("send path {}", p.0),
                Decision::Wait => "wait".into(),
                Decision::Blocked => "blocked".into(),
            };
            println!(
                "            t={:7.3}s  {:<14} why={:<20} k={:<3} paths={:?}",
                ev.t_ns as f64 / 1e9,
                verdict,
                d.why.label(),
                d.queued_pkts,
                d.paths[..d.n_paths as usize]
                    .iter()
                    .map(|p| format!("{}ms cwnd {}/{}", p.srtt_us / 1000, p.inflight, p.cwnd))
                    .collect::<Vec<_>>(),
            );
        }
    }
}

fn main() {
    println!("2 MB download over 0.3 Mbps WiFi + 8.6 Mbps LTE\n");
    run(
        ConnSpec::with_custom(
            Box::new(StickyFastest { patience: 4, consecutive_full: 0 }),
            vec![0, 1],
        ),
        "sticky",
    );
    for kind in [SchedulerKind::Default, SchedulerKind::Ecf] {
        run(ConnSpec::new(kind, vec![0, 1]), kind.label());
    }
    println!(
        "\nAnything implementing `ecf_core::Scheduler` slots in the same way —\n\
         the trait only sees per-path snapshots and the queued backlog."
    );
}
