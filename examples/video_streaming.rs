//! Adaptive video streaming over MPTCP: plays one DASH session per
//! scheduler on a heterogeneous WiFi+LTE pair and compares what the paper's
//! Fig 9 measures — average bit rate against the ideal.
//!
//! ```text
//! cargo run --release --example video_streaming [wifi_mbps] [lte_mbps]
//! ```

use mptcp_ecf::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let wifi: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.3);
    let lte: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8.6);
    let ideal = dash::ideal_avg_bitrate_mbps(wifi + lte);

    println!("DASH streaming, {wifi} Mbps WiFi + {lte} Mbps LTE (ideal {ideal:.2} Mbps)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "scheduler", "bitrate", "ratio", "stalls", "LTE resets", "reinjects"
    );

    for kind in SchedulerKind::paper_set() {
        let cfg = TestbedConfig::wifi_lte(wifi, lte, kind, 7);
        let player = PlayerConfig { video_secs: 180.0, ..PlayerConfig::default() };
        let mut tb = Testbed::new(cfg, DashApp::new(player, 0));
        tb.run_until(Time::from_secs(5_000));

        let p = &tb.app().player;
        let world = tb.world();
        println!(
            "{:>10} {:>9.2} Mbps {:>11.2} {:>8} {:>10} {:>10}",
            kind.label(),
            p.avg_bitrate_mbps(),
            p.avg_bitrate_mbps() / ideal,
            p.rebuffer_events,
            world.sender(0).subflows[1].cc.stats().iw_resets(),
            world.sender(0).stats().reinjections_queued,
        );
    }

    println!(
        "\nThe paper's shape: ECF nearest the ideal, BLEST ≈ default, DAPS worst\n\
         under heterogeneity; all four converge when the paths are symmetric\n\
         (try `-- 4.2 4.2`)."
    );
}
